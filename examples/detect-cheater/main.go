// Detect a cheater: the paper's TFT strategy assumes every node can
// observe its peers' contention windows (its ref [3]). This example shows
// how: a promiscuous observer counts who transmits in each virtual slot,
// inverts the channel model to estimate each peer's CW, and flags the
// node undercutting the announced efficient NE.
//
// Run with:
//
//	go run ./examples/detect-cheater
package main

import (
	"fmt"
	"log"

	"selfishmac"
)

func main() {
	log.SetFlags(0)

	// A 10-node network at the basic-access efficient NE... except node 3,
	// which secretly runs a quarter of the agreed contention window.
	game, err := selfishmac.NewGame(selfishmac.DefaultConfig(10, selfishmac.Basic))
	if err != nil {
		log.Fatal(err)
	}
	ne, err := game.FindPaperNE()
	if err != nil {
		log.Fatal(err)
	}
	cw := make([]int, 10)
	for i := range cw {
		cw[i] = ne.WStar
	}
	const cheater = 3
	cw[cheater] = ne.WStar / 4
	fmt.Printf("announced NE CW: %d; node %d secretly runs %d\n\n", ne.WStar, cheater, cw[cheater])

	// How long must the observer watch? The estimator's error shrinks as
	// 1/sqrt(slots); ask for 10% relative error on a conforming peer.
	slots, err := selfishmac.RequiredObservationSlots(ne.TauStar, 0.10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("window for 10%% CW accuracy at tau*=%.4f: %d virtual slots\n", ne.TauStar, slots)

	// Simulate the network and collect the observations.
	p := selfishmac.DefaultPHY()
	res, err := selfishmac.Simulate(selfishmac.SimConfig{
		Timing:   p.MustTiming(selfishmac.Basic),
		MaxStage: p.MaxBackoffStage,
		CW:       cw,
		Duration: 120e6, // 120 s
		Seed:     1,
		Gain:     1,
		Cost:     0.01,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("observed %d virtual slots over %.0f s\n\n", res.Slots, res.Time/1e6)

	// Estimate every peer's CW and apply the GTFT-style tolerance test.
	det := selfishmac.MisbehaviorDetector{ExpectedCW: ne.WStar, Beta: 0.8, MinSlots: slots}
	verdicts, err := det.Inspect(selfishmac.ObservationsFromSim(res), p.MaxBackoffStage)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %-10s %-12s %-10s %s\n", "node", "true CW", "estimated", "margin", "verdict")
	for i, v := range verdicts {
		verdict := "ok"
		if v.Misbehaving {
			verdict = "MISBEHAVING"
		}
		fmt.Printf("%-6d %-10d %-12.1f %-10.2f %s\n", i, cw[i], v.CW, v.Margin, verdict)
	}
	fmt.Println("\nwith the cheater identified, TFT/GTFT peers would now match its CW —")
	fmt.Println("the punishment that makes undercutting unprofitable for long-sighted players.")
}

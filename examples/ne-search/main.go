// NE search: the Section V.C distributed protocol. A leader walks the
// common contention window while every other node follows its Ready
// broadcasts, measuring its own payoff at each step, until the payoff
// peaks — with no knowledge of the population size. The example compares
// the paper's unit-step walk against the accelerated variant and shows
// both surviving 20% broadcast loss.
//
// Run with:
//
//	go run ./examples/ne-search
package main

import (
	"fmt"
	"log"

	"selfishmac"
)

func main() {
	log.SetFlags(0)
	game, err := selfishmac.NewGame(selfishmac.DefaultConfig(10, selfishmac.RTSCTS))
	if err != nil {
		log.Fatal(err)
	}
	exact, err := game.FindEfficientNE()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("10-player RTS/CTS game; exact efficient NE Wc* = %d\n\n", exact.WStar)

	const w0 = 8
	opts := selfishmac.SearchOptions{WMax: game.Config().WMax}

	// Paper's unit-step walk with exact payoff measurement.
	env1, err := selfishmac.NewAnalyticSearchEnv(game, 0, w0)
	if err != nil {
		log.Fatal(err)
	}
	paper, err := selfishmac.RunSearch(env1, 0, w0, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paper walk from W0=%d:        found W=%d in %d probes\n", w0, paper.W, paper.ProbeCount())

	// Accelerated variant: geometric expansion + step-halving refinement.
	env2, err := selfishmac.NewAnalyticSearchEnv(game, 0, w0)
	if err != nil {
		log.Fatal(err)
	}
	accel, err := selfishmac.RunAcceleratedSearch(env2, 0, w0, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accelerated from W0=%d:       found W=%d in %d probes\n", w0, accel.W, accel.ProbeCount())
	fmt.Println("probe trace (accelerated):")
	for _, p := range accel.Probes {
		fmt.Printf("  W=%4d payoff=%.5g\n", p.W, p.Payoff)
	}

	// Lossy broadcast medium: 20% of Ready messages are missed per node,
	// so the leader measures heterogeneous profiles. The payoff plateau
	// keeps the announced value near-optimal anyway.
	inner, err := selfishmac.NewAnalyticSearchEnv(game, 0, w0)
	if err != nil {
		log.Fatal(err)
	}
	lossyEnv, err := selfishmac.NewLossySearchEnv(inner, 0.2, 42)
	if err != nil {
		log.Fatal(err)
	}
	lossy, err := selfishmac.RunSearch(lossyEnv, 0, w0, opts)
	if err != nil {
		log.Fatal(err)
	}
	u, err := game.UniformUtilityRate(lossy.W)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith 20%% broadcast loss:     found W=%d in %d probes (payoff %.1f%% of peak)\n",
		lossy.W, lossy.ProbeCount(), 100*u/exact.UStar)
}

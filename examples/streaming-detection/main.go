// Streaming detection: examples/detect-cheater estimates peers' CWs from
// a finished trace; this example runs the same mathematics online. A
// StreamMonitor rides the simulator's Observer hook, closes a fixed
// estimation window every 1500 virtual slots, inverts the channel model
// per window, and flags the cheater while the run is still in flight —
// printing the flag event the instant it happens and, at the end, how
// many virtual slots the observer needed (the detection latency).
//
// Run with:
//
//	go run ./examples/streaming-detection
package main

import (
	"fmt"
	"log"

	"selfishmac"
)

func main() {
	log.SetFlags(0)

	// A 10-node network at the basic-access efficient NE... except node 0,
	// which secretly runs an eighth of the agreed contention window.
	const n = 10
	game, err := selfishmac.NewGame(selfishmac.DefaultConfig(n, selfishmac.Basic))
	if err != nil {
		log.Fatal(err)
	}
	ne, err := game.FindPaperNE()
	if err != nil {
		log.Fatal(err)
	}
	cw := make([]int, n)
	for i := range cw {
		cw[i] = ne.WStar
	}
	const cheater = 0
	cw[cheater] = ne.WStar / 8
	fmt.Printf("announced NE CW: %d; node %d secretly runs %d\n\n", ne.WStar, cheater, cw[cheater])

	// The monitor flags a peer the moment a window's estimate Ŵ drops
	// under Beta·W*. OnFlag fires synchronously from the engine hot loop.
	firstFlag := make([]int64, n)
	for i := range firstFlag {
		firstFlag[i] = -1
	}
	mon, err := selfishmac.NewStreamMonitor(selfishmac.StreamMonitorConfig{
		Nodes:       n,
		WindowSlots: 1500,
		Keep:        4,
		MaxStage:    selfishmac.DefaultPHY().MaxBackoffStage,
		ExpectedCW:  ne.WStar,
		Beta:        0.6,
		OnFlag: func(ev selfishmac.StreamFlagEvent) {
			if firstFlag[ev.Node] < 0 {
				firstFlag[ev.Node] = ev.EndSlot
				fmt.Printf("FLAG  slot %-7d node %d  window %-3d Ŵ=%.1f  (margin %.2f < β=0.60)\n",
					ev.EndSlot, ev.Node, ev.Window, ev.EstCW, ev.Margin)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Attach the monitor through the Observer hook and run: the trajectory
	// is bit-identical with or without it.
	p := selfishmac.DefaultPHY()
	res, err := selfishmac.Simulate(selfishmac.SimConfig{
		Timing:   p.MustTiming(selfishmac.Basic),
		MaxStage: p.MaxBackoffStage,
		CW:       cw,
		Duration: 60e6, // 60 s
		Seed:     1,
		Gain:     1,
		Cost:     0.01,
		Observer: mon,
	})
	if err != nil {
		log.Fatal(err)
	}
	mon.Finish(res.Slots)

	fmt.Printf("\nrun: %d virtual slots over %.0f s, %d estimation windows, %d flag events\n\n",
		res.Slots, res.Time/1e6, mon.Windows(), mon.Flags())
	fmt.Printf("%-6s %-9s %-8s %s\n", "node", "true CW", "flags", "slots to first flag")
	for i := 0; i < n; i++ {
		latency := "never flagged"
		if s := mon.FirstFlagSlot(i); s >= 0 {
			latency = fmt.Sprintf("%d", s)
		}
		fmt.Printf("%-6d %-9d %-8d %s\n", i, cw[i], mon.NodeFlags(i), latency)
	}
	if s := mon.FirstFlagSlot(cheater); s >= 0 {
		fmt.Printf("\nthe observer needed %d virtual slots to catch node %d — a GTFT peer\n", s, cheater)
		fmt.Println("could start punishing that early, without waiting for the trace to end.")
	}
}

// Multihop: the paper's Section VII.B scenario at a reduced scale — nodes
// move by random waypoint in a square area, each picks the efficient-NE CW
// of its local single-hop game, TFT drags everyone to the minimum Wm, and
// the spatial simulator measures how close Wm comes to the optimal common
// operating point.
//
// Run with:
//
//	go run ./examples/multihop [-nodes 50] [-duration 10]
package main

import (
	"flag"
	"fmt"
	"log"

	"selfishmac"
)

func main() {
	log.SetFlags(0)
	nodes := flag.Int("nodes", 50, "number of nodes (paper: 100)")
	duration := flag.Float64("duration", 10, "simulated seconds per operating point")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	topo := selfishmac.PaperTopology(*seed)
	topo.N = *nodes
	nw, err := selfishmac.NewNetwork(topo)
	if err != nil {
		log.Fatal(err)
	}
	// Sample the random-waypoint stationary distribution rather than the
	// uniform t=0 placement (300 s of mobility warm-up).
	if err := nw.Step(300); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes in %.0fx%.0f m, range %.0f m, mean degree %.1f, connected=%v\n",
		nw.N(), topo.Width, topo.Height, topo.Range, nw.MeanDegree(), nw.Connected())

	// Each node plays the efficient NE of its (deg+1)-player local game.
	sel, err := selfishmac.NewLocalCWSelector(selfishmac.DefaultConfig(2, selfishmac.RTSCTS))
	if err != nil {
		log.Fatal(err)
	}
	profile, err := selfishmac.LocalCWProfile(nw, sel)
	if err != nil {
		log.Fatal(err)
	}
	hist := map[int]int{}
	for _, w := range profile {
		hist[w]++
	}
	fmt.Printf("local-NE CW histogram: %v\n", hist)

	// Theorem 3: TFT converges to Wm = min_i W_i within the diameter.
	wm := selfishmac.ConvergedCW(profile)
	final, stages, converged := selfishmac.TFTConverge(nw.AdjacencyLists(), profile, 10*nw.N())
	uniform := true
	for _, w := range final {
		if w != wm {
			uniform = false
			break
		}
	}
	fmt.Printf("TFT convergence: Wm=%d, stages=%d, converged=%v, uniform=%v (paper scenario: Wm=26)\n",
		wm, stages, converged, uniform)

	// Section VII.B measurement: sweep the common CW and compare.
	res, err := selfishmac.MeasureQuasiOptimality(nw, selfishmac.QuasiOptConfig{
		Sim:              selfishmac.DefaultSpatialSimConfig(*duration*1e6, *seed),
		Wm:               wm,
		SweepMultipliers: []float64{0.4, 0.6, 0.8, 1.25, 1.6, 2.2, 3},
		Replicas:         2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("swept common CWs: %v\n", res.SweptCWs)
	fmt.Printf("global payoff: %.4g/us at Wm vs best %.4g/us at W=%d  => ratio %.3f (paper: >= 0.97)\n",
		res.GlobalAtWm, res.GlobalMax, res.BestGlobalW, res.GlobalRatio)
	fmt.Printf("per-node payoff ratio: min=%.3f mean=%.3f (paper: min >= 0.96)\n",
		res.MinPerNodeRatio, res.MeanPerNodeRatio)

	// Hidden-terminal factor: the Section VI.A approximation.
	sim := selfishmac.DefaultSpatialSimConfig(*duration*1e6, *seed+1)
	sim.CW = profileOf(wm, nw.N())
	spatial, err := selfishmac.SimulateSpatial(nw, sim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hidden-terminal loss fraction at Wm: %.4f (p_hn = %.4f)\n",
		spatial.HiddenFraction, 1-spatial.HiddenFraction)
}

func profileOf(w, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = w
	}
	return out
}

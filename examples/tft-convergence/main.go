// TFT convergence: run the repeated MAC game under three scenarios —
// heterogeneous TFT starts converging to the minimum CW, a malicious
// player dragging the whole network down, and GTFT absorbing observation
// noise that ruins plain TFT.
//
// Run with:
//
//	go run ./examples/tft-convergence
package main

import (
	"fmt"
	"log"

	"selfishmac"
)

func main() {
	log.SetFlags(0)
	game, err := selfishmac.NewGame(selfishmac.DefaultConfig(4, selfishmac.Basic))
	if err != nil {
		log.Fatal(err)
	}
	ne, err := game.FindEfficientNE()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4-player basic-access game, efficient NE Wc* = %d\n\n", ne.WStar)

	// Scenario 1: heterogeneous TFT initials converge to the minimum in
	// one stage (the paper's fairness argument).
	fmt.Println("-- scenario 1: TFT from heterogeneous starts")
	runAndPrint(game, []selfishmac.Strategy{
		selfishmac.TFT{Initial: 2 * ne.WStar},
		selfishmac.TFT{Initial: ne.WStar},
		selfishmac.TFT{Initial: ne.WStar / 2},
		selfishmac.TFT{Initial: 3 * ne.WStar / 2},
	}, nil, 5)

	// Scenario 2: one malicious node pinned far below Wc* (Section V.E):
	// TFT retaliation drags everyone down with it.
	fmt.Println("-- scenario 2: malicious player at W=8")
	runAndPrint(game, []selfishmac.Strategy{
		selfishmac.Constant{W: 8, Label: "malicious"},
		selfishmac.TFT{Initial: ne.WStar},
		selfishmac.TFT{Initial: ne.WStar},
		selfishmac.TFT{Initial: ne.WStar},
	}, nil, 5)

	// Scenario 3: ±15% observation noise. Plain TFT ratchets downward
	// (it matches the *minimum* of noisy readings each stage); GTFT with
	// an averaging window and tolerance holds the NE.
	fmt.Println("-- scenario 3: observation noise, TFT vs GTFT (30 stages)")
	noise := func(r *selfishmac.RandSource, w int) int {
		return int(float64(w) * r.UniformRange(0.85, 1.15))
	}
	tft := make([]selfishmac.Strategy, 4)
	gtft := make([]selfishmac.Strategy, 4)
	for i := range tft {
		tft[i] = selfishmac.TFT{Initial: ne.WStar}
		gtft[i] = selfishmac.GTFT{Initial: ne.WStar, R0: 5, Beta: 0.8}
	}
	tftFinal := finalProfile(game, tft, noise, 30)
	gtftFinal := finalProfile(game, gtft, noise, 30)
	fmt.Printf("TFT  after 30 noisy stages: %v (started at %d)\n", tftFinal, ne.WStar)
	fmt.Printf("GTFT after 30 noisy stages: %v (started at %d)\n\n", gtftFinal, ne.WStar)
}

func runAndPrint(game *selfishmac.Game, strats []selfishmac.Strategy, noise selfishmac.ObservationNoise, stages int) {
	opts := []selfishmac.EngineOption{}
	if noise != nil {
		opts = append(opts, selfishmac.WithNoise(noise))
	}
	eng, err := selfishmac.NewEngine(game, strats, opts...)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := eng.Run(stages)
	if err != nil {
		log.Fatal(err)
	}
	for k, st := range tr.Stages {
		fmt.Printf("stage %d: profile=%v  global utility=%.4g/us\n", k, st.Profile, sum(st.UtilityRates))
	}
	if tr.ConvergedAt >= 0 {
		fmt.Printf("=> converged at stage %d to CW %d\n\n", tr.ConvergedAt, tr.ConvergedCW)
	} else {
		fmt.Println("=> no convergence")
	}
}

func finalProfile(game *selfishmac.Game, strats []selfishmac.Strategy, noise selfishmac.ObservationNoise, stages int) []int {
	eng, err := selfishmac.NewEngine(game, strats, selfishmac.WithNoise(noise), selfishmac.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	tr, err := eng.Run(stages)
	if err != nil {
		log.Fatal(err)
	}
	return tr.FinalProfile()
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Quickstart: compute the efficient Nash equilibrium of the selfish MAC
// game for several population sizes and validate one operating point with
// the event-driven DCF simulator.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"selfishmac"
)

func main() {
	log.SetFlags(0)

	fmt.Println("Efficient NE of the selfish 802.11 MAC game (paper Tables II/III)")
	fmt.Println()
	fmt.Printf("%-8s %-6s %-12s %-12s %-10s\n", "mode", "n", "Wc* (paper)", "Wc* (ours)", "tau*")
	paper := map[selfishmac.AccessMode]map[int]int{
		selfishmac.Basic:  {5: 76, 20: 336, 50: 879},
		selfishmac.RTSCTS: {5: 22, 20: 48, 50: 116},
	}
	for _, mode := range []selfishmac.AccessMode{selfishmac.Basic, selfishmac.RTSCTS} {
		for _, n := range []int{5, 20, 50} {
			game, err := selfishmac.NewGame(selfishmac.DefaultConfig(n, mode))
			if err != nil {
				log.Fatal(err)
			}
			ne, err := game.FindPaperNE()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s %-6d %-12d %-12d %.5f\n", mode, n, paper[mode][n], ne.WStar, ne.TauStar)
		}
	}

	// Validate the basic n=5 equilibrium with the simulator: measured
	// per-node transmission probability should match the analytic tau*.
	game, err := selfishmac.NewGame(selfishmac.DefaultConfig(5, selfishmac.Basic))
	if err != nil {
		log.Fatal(err)
	}
	ne, err := game.FindPaperNE()
	if err != nil {
		log.Fatal(err)
	}
	p := selfishmac.DefaultPHY()
	tm, err := p.Timing(selfishmac.Basic)
	if err != nil {
		log.Fatal(err)
	}
	cw := make([]int, 5)
	for i := range cw {
		cw[i] = ne.WStar
	}
	res, err := selfishmac.Simulate(selfishmac.SimConfig{
		Timing:   tm,
		MaxStage: p.MaxBackoffStage,
		CW:       cw,
		Duration: 100e6, // 100 s
		Seed:     1,
		Gain:     1,
		Cost:     0.01,
	})
	if err != nil {
		log.Fatal(err)
	}
	var tau float64
	for _, nd := range res.Nodes {
		tau += nd.MeasuredTau
	}
	tau /= float64(len(res.Nodes))
	fmt.Println()
	fmt.Printf("simulation check (basic, n=5, W=%d, 100 s):\n", ne.WStar)
	fmt.Printf("  analytic tau* = %.5f, simulated tau = %.5f\n", ne.TauStar, tau)
	fmt.Printf("  analytic throughput = %.4f, simulated = %.4f\n", ne.ThroughputStar, res.Throughput)
}

// Rate control: the extension the paper's conclusion proposes — keep the
// game-theoretic framework, swap the strategy space. Here nodes choose
// their packet size at a fixed contention window; bit errors make very
// long packets fragile, and airtime is the shared resource. The example
// shows the commons tragedy of myopic play and how TFT with long-sighted
// players recovers the social optimum, mirroring the CW game.
//
// Run with:
//
//	go run ./examples/rate-control
package main

import (
	"fmt"
	"log"

	"selfishmac"
)

func main() {
	log.SetFlags(0)

	// Anchor the channel at the CW game's efficient NE for 10 nodes.
	cwGame, err := selfishmac.NewGame(selfishmac.DefaultConfig(10, selfishmac.Basic))
	if err != nil {
		log.Fatal(err)
	}
	ne, err := cwGame.FindPaperNE()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("channel: 10 nodes, basic access, CW fixed at the NE (%d)\n\n", ne.WStar)

	cfg := selfishmac.DefaultRateControlConfig(10, ne.WStar, selfishmac.Basic)
	game, err := selfishmac.NewRateControlGame(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The per-node utility as a function of the common packet size.
	fmt.Println("common payload sweep (per-node utility rate, /us):")
	for _, L := range []float64{512, 1024, 2048, 4096, 8192, 16384, 32768} {
		fmt.Printf("  L = %6.0f bits: u = %.4g\n", L, game.UniformUtility(L))
	}

	out, err := game.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsocial optimum:   L = %6.0f bits (u = %.4g/us)\n", out.LSocial, out.USocial)
	fmt.Printf("one-shot NE:      L = %6.0f bits (u = %.4g/us)\n", out.LNE, out.UNE)
	fmt.Printf("escalation %.2fx, price of anarchy %.3f\n\n", out.Escalation, out.PriceOfAnarchy)

	// Why it escalates: the best response to the social optimum.
	br, err := game.BestResponse(out.LSocial)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best response to everyone at %.0f bits: %.0f bits\n", out.LSocial, br)
	fmt.Printf("  deviator utility: %.4g/us vs conforming %.4g/us\n",
		game.DeviatorUtility(br, out.LSocial), game.UniformUtility(out.LSocial))
	fmt.Println("  longer packets earn the deviator more bits while the airtime cost")
	fmt.Println("  lands in everyone's shared slot time — a commons externality.")

	uTFT, err := game.TFTOutcome()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith TFT (match the largest observed payload) and long-sighted players,\n")
	fmt.Printf("the repeated game sustains the social optimum: u = %.4g/us (%.0f%% above the NE)\n",
		uTFT, 100*(uTFT/out.UNE-1))
}
